// Command benchsnap measures the repo's headline performance numbers
// and persists them as committed snapshots (BENCH_suite.json,
// BENCH_campaign.json), so a perf regression shows up as a diff — and
// CI can fail on a gross one — instead of silently accumulating.
//
// Three numbers matter for fleet-scale throughput, and each snapshot
// records the machinery to reproduce it:
//
//   - ns/ACT: wall nanoseconds per metered DRAM activation over a
//     cold full-suite run — the cost of the host→chip hot path that
//     the batched command kernels optimize.
//   - cold vs warm suite wall time: the same suite against an empty
//     and a populated probe-artifact store (warm runs skip the
//     reverse-engineering chain and go straight to measurement).
//   - campaign throughput: runs/minute over the golden campaign
//     population (3 vendors x 2 seeds, per-device recovery).
//
// Usage:
//
//	benchsnap                      # refresh both snapshots in place
//	benchsnap -check               # smoke mode: re-measure cold and
//	                               # warm ns/ACT and fail if either
//	                               # regressed more than -threshold x
//	                               # vs BENCH_suite.json
//	benchsnap -check -threshold 3
//
// Absolute wall times are machine-dependent; the -check gate therefore
// compares only ns/ACT ratios — cold (the batched command hot path)
// and warm (the arena + flip-table measurement fast path) — against
// the snapshot. The threshold (default 1.5x) trips on algorithmic
// regressions, not CI-runner jitter; both measured runs and the
// snapshot pin GOMAXPROCS (default 1) so the serial hot-path numbers
// stay comparable across machines with different core counts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dramscope/internal/expt"
	"dramscope/internal/store"
	"dramscope/internal/trace"
)

// SuiteBench is the committed BENCH_suite.json shape.
type SuiteBench struct {
	Schema      int     `json:"schema"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Jobs        int     `json:"jobs"`
	Shards      int     `json:"shards"`
	Activations int64   `json:"activations"`
	NsPerAct    float64 `json:"ns_per_act"`
	ColdWallMS  int64   `json:"cold_wall_ms"`
	WarmWallMS  int64   `json:"warm_wall_ms"`
	// WarmNsPerAct is the warm run's wall time over its own metered
	// activations — the per-activation cost once every probe artifact
	// is cached and the suite goes straight to measurement.
	WarmNsPerAct float64 `json:"warm_ns_per_act"`
}

// CampaignBench is the committed BENCH_campaign.json shape.
type CampaignBench struct {
	Schema        int     `json:"schema"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Jobs          int     `json:"jobs"`
	Runs          int     `json:"runs"`
	WallMS        int64   `json:"wall_ms"`
	RunsPerMinute float64 `json:"runs_per_minute"`
}

// serveBench is the slice of examples/loadgen's BENCH_serve.json the
// -check gate validates: the snapshot must come from a real load test
// (requests flowed), with a healthy server (no 5xx) whose single-flight
// admission actually coalesced work.
type serveBench struct {
	Requests  int `json:"requests"`
	Coalesced int `json:"coalesced"`
	Errors5xx int `json:"errors_5xx"`
}

func main() {
	suiteOut := flag.String("suite-out", "BENCH_suite.json", "suite snapshot path")
	campaignOut := flag.String("campaign-out", "BENCH_campaign.json", "campaign snapshot path")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "serving snapshot path (written by examples/loadgen; -check validates it)")
	check := flag.Bool("check", false, "re-measure the cold and warm suite and fail on a gross ns/ACT regression vs -suite-out")
	threshold := flag.Float64("threshold", 1.5, "-check fails when measured ns/ACT exceeds snapshot ns/ACT by this factor")
	traceOverhead := flag.Float64("trace-overhead", 1.05, "-check fails when a traced cold suite is slower than the untraced one by this factor")
	jobs := flag.Int("jobs", 1, "suite worker count for the measured runs (1 = the serial hot-path number)")
	maxprocs := flag.Int("gomaxprocs", 1, "pin GOMAXPROCS for the measured runs (0 = leave the runtime default)")
	flag.Parse()

	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}
	if err := run(*suiteOut, *campaignOut, *serveOut, *check, *threshold, *traceOverhead, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(suiteOut, campaignOut, serveOut string, check bool, threshold, traceOverhead float64, jobs int) error {
	if check {
		if err := checkServe(serveOut); err != nil {
			return err
		}
		untraced, err := checkSuite(suiteOut, threshold, jobs)
		if err != nil {
			return err
		}
		return checkTraceOverhead(untraced, traceOverhead, jobs)
	}
	sb, err := measureSuite(jobs, true)
	if err != nil {
		return err
	}
	if err := writeJSON(suiteOut, sb); err != nil {
		return err
	}
	fmt.Printf("suite: %.1f ns/ACT, cold %s, warm %s (%d ACTs, jobs=%d shards=%d)\n",
		sb.NsPerAct, time.Duration(sb.ColdWallMS)*time.Millisecond,
		time.Duration(sb.WarmWallMS)*time.Millisecond, sb.Activations, sb.Jobs, sb.Shards)

	cb, err := measureCampaign(jobs)
	if err != nil {
		return err
	}
	if err := writeJSON(campaignOut, cb); err != nil {
		return err
	}
	fmt.Printf("campaign: %d runs in %s = %.2f runs/min (jobs=%d)\n",
		cb.Runs, time.Duration(cb.WallMS)*time.Millisecond, cb.RunsPerMinute, cb.Jobs)
	return nil
}

// coldSuite runs the full default suite against the given store
// (nil = no store), optionally under a trace span, and returns the
// wall time and metered activations.
func coldSuite(jobs int, st *store.Store, root *trace.Span) (time.Duration, int64, error) {
	s, err := expt.DefaultSuite(expt.DefaultFigProfile, expt.DefaultSeed)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	rep, err := s.Run(expt.Options{Spec: expt.RunSpec{Jobs: jobs, Shards: jobs}, Store: st, Trace: root})
	if err != nil {
		return 0, 0, err
	}
	if err := rep.Err(); err != nil {
		return 0, 0, err
	}
	return time.Since(start), s.ActivationsUsed(), nil
}

func measureSuite(jobs int, warm bool) (*SuiteBench, error) {
	sb := &SuiteBench{Schema: 1, GoMaxProcs: runtime.GOMAXPROCS(0), Jobs: jobs, Shards: jobs}

	st, cleanup, err := tempStore()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Cold: empty store, the run pays the full probe chain.
	cold, acts, err := coldSuite(jobs, st, nil)
	if err != nil {
		return nil, err
	}
	sb.ColdWallMS = cold.Milliseconds()
	sb.Activations = acts
	if acts > 0 {
		sb.NsPerAct = float64(cold.Nanoseconds()) / float64(acts)
	}

	if warm {
		// Warm: the store now holds every probe chain; the suite skips
		// straight to measurement.
		warmWall, warmActs, err := coldSuite(jobs, st, nil)
		if err != nil {
			return nil, err
		}
		sb.WarmWallMS = warmWall.Milliseconds()
		if warmActs > 0 {
			sb.WarmNsPerAct = float64(warmWall.Nanoseconds()) / float64(warmActs)
		}
	}
	return sb, nil
}

// goldenCampaignSpecs mirrors the Makefile's GOLDEN_CAMPAIGN
// population: one representative device per vendor x two seeds, each
// run recovering its own Table III row.
func goldenCampaignSpecs() []expt.RunSpec {
	var specs []expt.RunSpec
	for _, prof := range []string{"MfrA-DDR4-x4-2016", "MfrB-DDR4-x4-2019", "MfrC-DDR4-x8-2016"} {
		for _, seed := range []uint64{5, 7} {
			specs = append(specs, expt.RunSpec{Profile: prof, Seed: seed, Only: []string{"recover"}})
		}
	}
	return specs
}

func measureCampaign(jobs int) (*CampaignBench, error) {
	c := &expt.Campaign{Specs: goldenCampaignSpecs()}
	start := time.Now()
	rep, err := c.Run(expt.CampaignOptions{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	cb := &CampaignBench{
		Schema:     1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       jobs,
		Runs:       len(c.Specs),
		WallMS:     wall.Milliseconds(),
	}
	if wall > 0 {
		cb.RunsPerMinute = float64(cb.Runs) / wall.Minutes()
	}
	return cb, nil
}

// tempStore opens a throwaway probe-artifact store; the caller must
// invoke cleanup.
func tempStore() (st *store.Store, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "benchsnap-store-*")
	if err != nil {
		return nil, nil, err
	}
	st, err = store.OpenDir(dir, false)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return st, func() { os.RemoveAll(dir) }, nil
}

// checkSuite is the CI smoke gate: one cold suite run populating a
// throwaway store, then one warm run against it, each compared against
// the committed snapshot on its machine-portable ns/ACT metric. The
// measured cold wall time is returned so the trace-overhead gate can
// reuse it. The cold gate guards the batched command hot path; the
// warm gate guards the measurement fast path — the arena, the flip
// tables, and the allocation-free batch loop.
func checkSuite(suiteOut string, threshold float64, jobs int) (time.Duration, error) {
	data, err := os.ReadFile(suiteOut)
	if err != nil {
		return 0, fmt.Errorf("no committed snapshot (run `make bench-snapshot` first): %w", err)
	}
	var want SuiteBench
	if err := json.Unmarshal(data, &want); err != nil {
		return 0, fmt.Errorf("corrupt snapshot %s: %w", suiteOut, err)
	}
	if want.NsPerAct <= 0 {
		return 0, fmt.Errorf("snapshot %s has no ns/ACT baseline", suiteOut)
	}

	st, cleanup, err := tempStore()
	if err != nil {
		return 0, err
	}
	defer cleanup()

	cold, acts, err := coldSuite(jobs, st, nil)
	if err != nil {
		return 0, err
	}
	if acts <= 0 {
		return 0, fmt.Errorf("cold suite metered no activations")
	}
	got := float64(cold.Nanoseconds()) / float64(acts)
	fmt.Printf("ns/ACT: measured %.1f, snapshot %.1f (%.2fx, threshold %.1fx)\n",
		got, want.NsPerAct, got/want.NsPerAct, threshold)
	if got > want.NsPerAct*threshold {
		return 0, fmt.Errorf("hot path regressed: %.1f ns/ACT vs snapshot %.1f (more than %.1fx)",
			got, want.NsPerAct, threshold)
	}

	// Snapshots written before the warm metric existed have no
	// baseline to compare against; the cold gate still applies.
	if want.WarmNsPerAct > 0 {
		warmWall, warmActs, err := coldSuite(jobs, st, nil)
		if err != nil {
			return 0, err
		}
		if warmActs <= 0 {
			return 0, fmt.Errorf("warm suite metered no activations")
		}
		warmGot := float64(warmWall.Nanoseconds()) / float64(warmActs)
		fmt.Printf("warm ns/ACT: measured %.1f, snapshot %.1f (%.2fx, threshold %.1fx)\n",
			warmGot, want.WarmNsPerAct, warmGot/want.WarmNsPerAct, threshold)
		if warmGot > want.WarmNsPerAct*threshold {
			return 0, fmt.Errorf("warm measurement path regressed: %.1f ns/ACT vs snapshot %.1f (more than %.1fx)",
				warmGot, want.WarmNsPerAct, threshold)
		}
	}
	return cold, nil
}

// checkTraceOverhead proves tracing stays effectively free on the hot
// path: one traced cold suite, compared against the untraced wall time
// checkSuite just measured on the same machine in the same process.
// Span creation is per-unit, not per-command, so the real ratio is
// ~1.00; the gate's margin absorbs run-to-run jitter.
func checkTraceOverhead(untraced time.Duration, factor float64, jobs int) error {
	// The traced run gets its own empty store so it pays the same cold
	// probe chain and artifact writes as the untraced baseline.
	st, cleanup, err := tempStore()
	if err != nil {
		return err
	}
	defer cleanup()
	rec := trace.New(trace.DeriveID("benchsnap", "trace-overhead"))
	root := rec.Root("run", "benchsnap traced cold suite").Begin()
	traced, _, err := coldSuite(jobs, st, root)
	if err != nil {
		return err
	}
	root.End()
	if n := len(rec.Records()); n < 2 {
		return fmt.Errorf("traced suite recorded only %d spans; tracing was not engaged", n)
	}
	ratio := float64(traced) / float64(untraced)
	fmt.Printf("trace overhead: untraced %s, traced %s (%.3fx, threshold %.2fx)\n",
		untraced.Round(time.Millisecond), traced.Round(time.Millisecond), ratio, factor)
	if ratio > factor {
		return fmt.Errorf("tracing overhead %.3fx exceeds %.2fx: traced %s vs untraced %s",
			ratio, factor, traced, untraced)
	}
	return nil
}

// checkServe validates the committed serving snapshot: it must record
// a real load test against a healthy server whose coalescing engaged.
// Unlike the ns/ACT gate it re-reads rather than re-measures — a load
// test needs minutes and a quiet machine, so CI regenerates it in its
// own job and this gate keeps the committed numbers honest.
func checkServe(serveOut string) error {
	data, err := os.ReadFile(serveOut)
	if err != nil {
		return fmt.Errorf("no serving snapshot (run `make bench-snapshot` first): %w", err)
	}
	var sb serveBench
	if err := json.Unmarshal(data, &sb); err != nil {
		return fmt.Errorf("corrupt snapshot %s: %w", serveOut, err)
	}
	if sb.Requests == 0 {
		return fmt.Errorf("%s records zero requests; not a real load test", serveOut)
	}
	if sb.Errors5xx > 0 {
		return fmt.Errorf("%s records %d server errors (5xx)", serveOut, sb.Errors5xx)
	}
	if sb.Coalesced == 0 {
		return fmt.Errorf("%s records zero coalesced requests; single-flight admission never engaged", serveOut)
	}
	fmt.Printf("serve: %d requests, %d coalesced, 0 5xx (%s ok)\n", sb.Requests, sb.Coalesced, serveOut)
	return nil
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
