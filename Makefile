# Entry points for the dramscope reproduction.
#
#   make test    - full tier-1 verify (build + vet + all tests)
#   make race    - full test suite under the race detector
#   make short   - fast unit tests only (skips catalog-scale probes)
#   make bench   - regenerate every paper artifact as benchmarks
#   make bench-snapshot - re-measure and commit the perf snapshots
#                  (BENCH_suite.json / BENCH_campaign.json: ns/ACT,
#                  cold/warm suite wall time, campaign throughput;
#                  BENCH_serve.json: serving-layer load test — latency
#                  percentiles, coalesce rate, rejects)
#   make bench-check - CI smoke gate: fail if the cold- or warm-suite
#                  ns/ACT regressed more than 1.5x vs the committed
#                  snapshot (GOMAXPROCS pinned to 1 on both sides),
#                  if BENCH_serve.json records 5xx errors or zero
#                  coalesced requests, or if tracing the cold suite
#                  costs more than 5% wall time
#   make bench-profile - capture a CPU profile of a warm suite run
#                  (PROFILE_OUT, default bench.prof) for inspection
#                  with `go tool pprof`
#   make load    - hammer a self-hosted server with examples/loadgen
#                  and print the ServeBench numbers (no files written)
#   make suite   - run the concurrent experiment suite (all artifacts)
#   make serve   - boot the HTTP run service (cmd/dramscoped)
#   make golden  - regenerate the golden-report fixtures (full suite +
#                  campaign aggregate) after an intentional output
#                  change (review the diff!)
#   make campaign - run the golden campaign population from the CLI
#                  (3 vendors x 2 seeds, per-device recovery)
#   make fleet   - federation tests: fault injection, placement
#                  invariance, and the golden campaign byte-diffed
#                  over 1/2/4 worker nodes
#   make clean-store - delete the local probe-artifact store
#                  (STORE_DIR, default ./dramscope-store); do this after
#                  changing probe code without bumping ProbeSchemaVersion
#
# SUITE_FLAGS passes through to cmd/experiments, e.g.
#   make suite SUITE_FLAGS='-run fig12,fig14 -jobs 8 -shards 32 -json out.json'
#   make suite SUITE_FLAGS='-run all -store dramscope-store'  # warm runs skip probing
# SERVE_FLAGS passes through to cmd/dramscoped, e.g.
#   make serve SERVE_FLAGS='-addr :9000 -budget 8 -cache 128 -store dramscope-store'

GO ?= go
SUITE_FLAGS ?= -run all
SERVE_FLAGS ?=
STORE_DIR ?= dramscope-store

.PHONY: build test race short bench bench-snapshot bench-check bench-profile load suite serve vet golden campaign fleet clean-store

# The golden campaign population (mirrored by expt.GoldenCampaign and
# asserted by TestGoldenCampaignReport): one representative device per
# vendor x two seeds, each run recovering its own Table III row.
GOLDEN_CAMPAIGN = -campaign 'MfrA-DDR4-x4-2016,MfrB-DDR4-x4-2019,MfrC-DDR4-x8-2016' -seeds 5,7 -run recover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 40m ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The committed perf snapshots record the hot path's trajectory
# (ns/ACT is the headline; wall times are machine-dependent context).
# Refresh them on a quiet machine after intentional perf changes and
# commit the diff.
bench-snapshot:
	$(GO) run ./cmd/benchsnap
	$(GO) run ./examples/loadgen -selfhost -duration 5s -min-coalesced 1 -max-5xx 0 -out BENCH_serve.json

bench-check:
	$(GO) run ./cmd/benchsnap -check

# A CPU profile of the warm measurement path: populate a throwaway
# store with one cold suite run, then profile the warm run that hits
# the arena + flip-table kernels. CI uploads the profile as a
# bench-smoke artifact so a regression comes with its own flame graph.
PROFILE_OUT ?= bench.prof
bench-profile:
	set -e; dir=$$(mktemp -d /tmp/dramscope-profile-XXXXXX); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/experiments -run all -store "$$dir" > /dev/null; \
	$(GO) run ./cmd/experiments -run all -store "$$dir" -cpuprofile $(PROFILE_OUT) > /dev/null
	@echo "wrote $(PROFILE_OUT); inspect with: $(GO) tool pprof $(PROFILE_OUT)"

# LOAD_FLAGS passes through to examples/loadgen, e.g.
#   make load LOAD_FLAGS='-duration 30s -clients 64 -hot 0.5'
LOAD_FLAGS ?= -duration 5s
load:
	$(GO) run ./examples/loadgen -selfhost $(LOAD_FLAGS)

suite:
	$(GO) run ./cmd/experiments $(SUITE_FLAGS)

serve:
	$(GO) run ./cmd/dramscoped $(SERVE_FLAGS)

# The fixtures are the full default-profile/default-seed suite report
# and the golden-campaign aggregate; TestGoldenSuiteReport and
# TestGoldenCampaignReport fail on any byte of drift from them.
golden:
	$(GO) run ./cmd/experiments -run all -json internal/expt/testdata/suite_report.json > /dev/null
	$(GO) run ./cmd/experiments $(GOLDEN_CAMPAIGN) -json internal/expt/testdata/campaign_report.json > /dev/null

# The federation gate: fault-injection and placement-invariance tests
# under the race detector, then the golden campaign federated over
# 1/2/4 in-process worker nodes and byte-diffed against the fixture.
fleet:
	$(GO) test -race -count=1 -run 'Federated|RetryAfter' -timeout 20m ./internal/serve/
	$(GO) test -race -count=1 ./internal/serve/dispatch/
	$(GO) test -count=1 -run 'TestFederatedCampaignBytes' -timeout 20m ./internal/serve/

# CAMPAIGN_FLAGS appends extras, e.g.
#   make campaign CAMPAIGN_FLAGS='-store dramscope-store -progress'
campaign:
	$(GO) run ./cmd/experiments $(GOLDEN_CAMPAIGN) $(CAMPAIGN_FLAGS)

# The store is a pure cache: deleting it is always safe (the next run
# re-probes) and is the invalidation of last resort for dev builds,
# whose entries share one "dev" fingerprint (see internal/store).
clean-store:
	rm -rf $(STORE_DIR)
